package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"secddr/internal/resultstore"
	"secddr/internal/sim"
)

// fakeClock is a hand-advanced time source shared by every lease in a
// failover test, so TTL expiry is driven instead of waited out.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestLeaderLease: acquire/renew/release with epoch fencing, on a fake
// clock.
func TestLeaderLease(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	l1 := &LeaderLease{Dir: dir, ID: "r1", URL: "http://r1", TTL: 5 * time.Second, Now: clock.Now}
	l2 := &LeaderLease{Dir: dir, ID: "r2", URL: "http://r2", TTL: 5 * time.Second, Now: clock.Now}

	epoch, ok, _, err := l1.Acquire()
	if err != nil || !ok || epoch != 1 {
		t.Fatalf("first acquire = (%d, %v, %v), want epoch 1", epoch, ok, err)
	}
	// A live lease blocks the peer, and tells it who leads.
	if _, ok, doc, err := l2.Acquire(); err != nil || ok || doc.HolderID != "r1" || doc.URL != "http://r1" {
		t.Fatalf("contended acquire = (%v, %+v, %v), want blocked by r1", ok, doc, err)
	}
	if err := l1.Renew(epoch); err != nil {
		t.Fatalf("renew while holding: %v", err)
	}

	// Past the TTL the peer takes over at a bumped epoch; the deposed
	// holder's renew is fenced off.
	clock.Advance(6 * time.Second)
	epoch2, ok, _, err := l2.Acquire()
	if err != nil || !ok || epoch2 != 2 {
		t.Fatalf("takeover = (%d, %v, %v), want epoch 2", epoch2, ok, err)
	}
	if err := l1.Renew(epoch); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("deposed renew = %v, want ErrLeaseLost", err)
	}

	// Release rewinds the expiry: the next acquire wins immediately.
	if err := l2.Release(epoch2); err != nil {
		t.Fatal(err)
	}
	if epoch3, ok, _, err := l1.Acquire(); err != nil || !ok || epoch3 != 3 {
		t.Fatalf("post-release acquire = (%d, %v, %v), want epoch 3", epoch3, ok, err)
	}
}

// TestReplicaFailover: replica 1 leads and runs half a sweep; its lease
// expires (fake clock), replica 2 fences it off at a higher epoch,
// replays the shared WAL directory, and finishes the sweep — no digest
// executes twice, and the demoted replica transparently proxies client
// traffic to the new leader.
func TestReplicaFailover(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	ctx := context.Background()
	spec := tinySpec() // 4 jobs
	const key = "failover"
	id, err := SweepID(key, spec)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	executed := map[string]int{}
	countingSim := func(o sim.Options) (sim.Result, error) {
		mu.Lock()
		executed[o.Digest()]++
		mu.Unlock()
		return fakeSim(o)
	}

	mkReplica := func(rid string) (*Replica, *httptest.Server) {
		store, err := resultstore.Open(dir, resultstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		r := NewReplica(store, dir, ReplicaOptions{
			ID:       rid,
			LeaseTTL: 5 * time.Second,
			Server:   ServerOptions{Workers: 2},
		})
		r.lease.Now = clock.Now
		ts := httptest.NewServer(r.Handler())
		t.Cleanup(ts.Close)
		r.opt.AdvertiseURL = ts.URL
		r.lease.URL = ts.URL
		return r, ts
	}
	r1, ts1 := mkReplica("r1")
	r2, ts2 := mkReplica("r2")

	started := make(chan struct{}, 8)
	release := make(chan struct{})
	r1.simHook = func(o sim.Options) (sim.Result, error) {
		started <- struct{}{}
		<-release
		return countingSim(o)
	}
	r2.simHook = countingSim

	// r1 wins the lease and leads; r2's contending acquire loses and
	// learns the leader's URL.
	epoch1, ok, _, err := r1.lease.Acquire()
	if err != nil || !ok || epoch1 != 1 {
		t.Fatalf("r1 acquire = (%d, %v, %v)", epoch1, ok, err)
	}
	if err := r1.promote(ctx, epoch1); err != nil {
		t.Fatal(err)
	}
	if _, ok, doc, _ := r2.lease.Acquire(); ok || doc.URL != ts1.URL {
		t.Fatalf("r2 contending acquire = (%v, %+v), want blocked by r1", ok, doc)
	}
	r2.setLeader(ts1.URL)

	// Submitting through the FOLLOWER proxies to the leader.
	cl2 := &Client{BaseURL: ts2.URL}
	sub, err := cl2.SubmitKeyed(ctx, key, spec)
	if err != nil || sub.ID != id {
		t.Fatalf("submit via follower = %+v, %v", sub, err)
	}
	<-started
	<-started // two jobs in flight on r1, two queued

	// The lease expires un-renewed; r2 fences r1 off at epoch 2.
	clock.Advance(6 * time.Second)
	epoch2, ok, _, err := r2.lease.Acquire()
	if err != nil || !ok || epoch2 != epoch1+1 {
		t.Fatalf("r2 takeover = (%d, %v, %v), want epoch %d", epoch2, ok, err, epoch1+1)
	}
	if err := r1.lease.Renew(epoch1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("fenced renew = %v, want ErrLeaseLost", err)
	}

	// r1 demotes: queued jobs fail resumable, in-flight jobs finish into
	// the shared store and WAL, the handler flips to follower mode.
	r1.Server().Shutdown()
	close(release)
	r1.demote()
	if leading, _ := r1.Leading(); leading {
		t.Fatal("r1 still leading after demote")
	}
	if _, ok, doc, _ := r1.lease.Acquire(); ok {
		t.Fatal("deposed r1 re-acquired a live lease")
	} else {
		r1.setLeader(doc.URL)
	}

	// r2 promotes: store refresh + WAL replay resume the sweep.
	if err := r2.promote(ctx, epoch2); err != nil {
		t.Fatal(err)
	}
	if leading, epoch := r2.Leading(); !leading || epoch != epoch2 {
		t.Fatalf("r2 Leading() = (%v, %d), want (true, %d)", leading, epoch, epoch2)
	}
	sw, ok := r2.Server().lookupSweep(id)
	if !ok {
		t.Fatalf("new leader does not know sweep %s", id)
	}
	st := waitState(t, sw)
	if st.State != string(stateDone) {
		t.Fatalf("sweep after failover = %q (%s), want done", st.State, st.Error)
	}
	if st.Stats.Recovered != 2 {
		t.Errorf("stats.Recovered = %d, want 2", st.Stats.Recovered)
	}

	// Exactly-once across the failover.
	mu.Lock()
	if len(executed) != 4 {
		t.Errorf("%d digests executed, want 4", len(executed))
	}
	for d, n := range executed {
		if n != 1 {
			t.Errorf("digest %s executed %d times across failover, want 1", d, n)
		}
	}
	mu.Unlock()

	// The demoted replica proxies the full API — status and the result
	// stream — to the new leader.
	cl1 := &Client{BaseURL: ts1.URL}
	if st, err := cl1.Status(ctx, id); err != nil || st.State != string(stateDone) {
		t.Fatalf("status via demoted replica = %+v, %v", st, err)
	}
	keys := map[string]bool{}
	err = cl1.StreamResults(ctx, id, func(item StreamItem) error {
		if !item.End {
			keys[item.Key] = true
		}
		return nil
	})
	if err != nil || len(keys) != 4 {
		t.Fatalf("stream via demoted replica = %d results, %v; want 4", len(keys), err)
	}

	// Follower-local metrics say so.
	resp, err := http.Get(ts1.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "secddr_leader 0") {
		t.Errorf("follower /metrics missing secddr_leader 0:\n%s", body)
	}

	r2.demote()
}
