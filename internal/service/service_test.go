package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"secddr/internal/harness"
	"secddr/internal/resultstore"
	"secddr/internal/sim"
)

// memStore is an in-memory harness.Store for tests that don't need disk.
type memStore struct {
	mu sync.Mutex
	m  map[string]sim.Result
}

func newMemStore() *memStore { return &memStore{m: make(map[string]sim.Result)} }

func (s *memStore) Lookup(d string) (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.m[d]
	return res, ok
}

func (s *memStore) Record(d string, res sim.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[d] = res
	return nil
}

// fakeSim is an instant stand-in for sim.Run.
func fakeSim(o sim.Options) (sim.Result, error) {
	return sim.Result{
		Workload: o.WorkloadName(),
		Mode:     o.Config.Security.Mode,
		IPC:      1.0,
	}, nil
}

// tinySpec is a 2x2 grid cheap enough for stubbed servers.
func tinySpec() Spec {
	return Spec{
		Modes:        []string{"unprotected", "secddr+ctr"},
		Workloads:    []string{"mcf", "lbm"},
		InstrPerCore: 5_000,
		WarmupInstr:  1_000,
	}
}

func TestSpecValidation(t *testing.T) {
	for name, sp := range map[string]Spec{
		"unknown mode":     {Modes: []string{"no-such-mode"}},
		"unknown workload": {Workloads: []string{"no-such-workload"}},
		"bad channels":     {Modes: []string{"unprotected"}, Channels: 3},
	} {
		if _, err := sp.Grid(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	grid, err := tinySpec().Grid()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(grid.Jobs()); n != 4 {
		t.Fatalf("tiny spec expands to %d jobs, want 4", n)
	}
	// Default spec: fig6 x all workloads at figure scale.
	dflt, err := Spec{}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(dflt.Configs) != 5 || len(dflt.Workloads) == 0 || dflt.Seed != 42 {
		t.Fatalf("default spec = %d configs, %d workloads, seed %d",
			len(dflt.Configs), len(dflt.Workloads), dflt.Seed)
	}
	// An explicit seed of 0 is preserved, not remapped to the default.
	zero := uint64(0)
	g0, err := Spec{Seed: &zero}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g0.Seed != 0 {
		t.Fatalf("explicit seed 0 became %d", g0.Seed)
	}
}

// TestDrainWaitsForSweeps: results of simulations in flight at shutdown
// must reach the store before Drain returns (secddr-serve closes the
// store right after).
func TestDrainWaitsForSweeps(t *testing.T) {
	store := newMemStore()
	srv := NewServer(store, ServerOptions{Workers: 4})
	slow := make(chan struct{})
	srv.runSim = func(o sim.Options) (sim.Result, error) {
		<-slow
		return fakeSim(o)
	}
	if _, err := srv.Submit(tinySpec()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(slow)
	}()
	srv.Drain()
	store.mu.Lock()
	n := len(store.m)
	store.mu.Unlock()
	if n != 4 {
		t.Fatalf("store holds %d results after Drain, want 4", n)
	}
}

// TestRemoteSweepEndToEnd drives the whole loop over real HTTP with real
// simulations: submit, stream, and a second submission served entirely
// from the store.
func TestRemoteSweepEndToEnd(t *testing.T) {
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "store"), resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store, ServerOptions{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	outs, stats, err := cl.RunRemote(ctx, tinySpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 || stats.Executed != 4 || stats.Cached != 0 {
		t.Fatalf("first run: %d outcomes, stats %+v", len(outs), stats)
	}
	// Outcomes come back in local job order, like a local run.
	grid, _ := tinySpec().Grid()
	for i, j := range grid.Jobs() {
		if outs[i].Key != j.Key {
			t.Fatalf("outcome[%d] = %q, want %q", i, outs[i].Key, j.Key)
		}
	}

	// Identical re-submission under the same (default) key attaches to
	// the finished sweep instead of starting a duplicate.
	key, err := tinySpec().DefaultKey()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cl.SubmitKeyed(ctx, key, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Attached {
		t.Fatalf("re-submission of the same (key, spec) did not attach: %+v", sub)
	}

	// The same grid under a different key is a distinct sweep — served
	// entirely from the store, zero simulations.
	outs2, stats2, err := cl.RunRemoteKeyed(ctx, "rerun", tinySpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Executed != 0 || stats2.Cached != 4 {
		t.Fatalf("re-run stats = %+v, want 0 executed / 4 cached", stats2)
	}
	for i := range outs {
		if !outs2[i].Cached {
			t.Errorf("outcome %q not served from store", outs2[i].Key)
		}
		if outs[i].Result.IPC != outs2[i].Result.IPC {
			t.Errorf("outcome %q differs between live and cached run", outs[i].Key)
		}
	}

	// Single-result endpoint serves a recorded digest.
	var res sim.Result
	if r, ok := store.Lookup(outs[0].Digest); !ok {
		t.Fatalf("digest %s not in store", outs[0].Digest)
	} else {
		res = r
	}
	if res.Workload != outs[0].Workload {
		t.Errorf("stored result workload = %q, want %q", res.Workload, outs[0].Workload)
	}
}

// TestSingleflightAcrossSweeps: two concurrent sweeps whose grids overlap
// must simulate each shared digest exactly once — the in-flight dedup the
// subsystem is named for.
func TestSingleflightAcrossSweeps(t *testing.T) {
	srv := NewServer(newMemStore(), ServerOptions{Workers: 8})
	block := make(chan struct{})
	var mu sync.Mutex
	counts := make(map[string]int)
	srv.runSim = func(o sim.Options) (sim.Result, error) {
		mu.Lock()
		counts[o.Digest()]++
		mu.Unlock()
		<-block
		return fakeSim(o)
	}

	shared := Spec{Modes: []string{"unprotected"}, Workloads: []string{"mcf", "lbm"}, Quick: true}
	overlap := Spec{Modes: []string{"unprotected"}, Workloads: []string{"mcf", "pr"}, Quick: true}
	swA, err := srv.Submit(shared)
	if err != nil {
		t.Fatal(err)
	}
	swB, err := srv.Submit(overlap)
	if err != nil {
		t.Fatal(err)
	}

	// Three distinct digests (mcf shared) -> three flights, then release.
	deadline := time.After(5 * time.Second)
	for {
		srv.mu.Lock()
		n := len(srv.inflight)
		srv.mu.Unlock()
		if n == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("flights = %d, want 3", n)
		case <-time.After(time.Millisecond):
		}
	}
	close(block)

	for _, sw := range []*sweep{swA, swB} {
		for sw.status().State == string(stateRunning) {
			select {
			case <-deadline:
				t.Fatalf("sweep %s never finished", sw.id)
			case <-time.After(time.Millisecond):
			}
		}
		if st := sw.status(); st.State != string(stateDone) || st.Done != 2 {
			t.Fatalf("sweep %s status = %+v", sw.id, st)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(counts) != 3 {
		t.Fatalf("simulated %d distinct digests, want 3", len(counts))
	}
	for d, n := range counts {
		if n != 1 {
			t.Errorf("digest %s simulated %d times, want 1", d, n)
		}
	}
	srv.mu.Lock()
	deduped := srv.jobsDeduped
	srv.mu.Unlock()
	if deduped < 1 {
		t.Errorf("jobsDeduped = %d, want >= 1 (the joined shared digest)", deduped)
	}
}

// TestHTTPSurface covers the small endpoints: health, metrics, 404s, and
// spec rejection.
func TestHTTPSurface(t *testing.T) {
	srv := NewServer(newMemStore(), ServerOptions{Workers: 1})
	srv.runSim = fakeSim
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	if _, _, err := cl.RunRemote(ctx, Spec{Modes: []string{"bogus"}}, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("bad spec error = %v", err)
	}
	if _, err := cl.Status(ctx, "sweep-999999"); !errors.Is(err, ErrUnknownSweep) {
		t.Errorf("missing sweep error = %v, want ErrUnknownSweep", err)
	}

	if _, _, err := cl.RunRemote(ctx, tinySpec(), nil); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("metrics = %v, %v", resp, err)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	body := string(buf[:n])
	for _, want := range []string{
		"secddr_sims_executed_total 4",
		"secddr_sweeps_total 1", // the rejected spec never registered
		"secddr_jobs_cached_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/results/not-a-digest")
	if err != nil || resp.StatusCode != 404 {
		t.Fatalf("missing digest = %v, %v", resp, err)
	}
	resp.Body.Close()
}

// TestStreamWhileRunning: a streamer connected before completion receives
// outcomes incrementally, not only at the end.
func TestStreamWhileRunning(t *testing.T) {
	srv := NewServer(newMemStore(), ServerOptions{Workers: 1})
	release := make(chan struct{})
	first := true
	var gate sync.Mutex
	srv.runSim = func(o sim.Options) (sim.Result, error) {
		gate.Lock()
		wasFirst := first
		first = false
		gate.Unlock()
		if !wasFirst {
			<-release // hold every simulation after the first
		}
		return fakeSim(o)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	sub, err := cl.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan harness.Outcome, 8)
	go cl.StreamResults(ctx, sub.ID, func(item StreamItem) error {
		if !item.End {
			got <- item.Outcome
		}
		return nil
	})
	select {
	case <-got: // first outcome arrives while three sims are still held
	case <-time.After(5 * time.Second):
		t.Fatal("no outcome streamed while sweep still running")
	}
	close(release)
	for i := 0; i < 3; i++ {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("stream never delivered remaining outcomes")
		}
	}
}
