package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWALRoundTrip: records appended by one WAL replay back verbatim.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(Spec{Workloads: []string{"mcf"}})
	recs := []walRecord{
		{Type: walSweepRec, Sweep: "sw-1", Key: "k", Spec: spec},
		{Type: walDoneRec, Sweep: "sw-1", Seq: 1, JobKey: "a", Digest: "d1", Cached: true},
		{Type: walDoneRec, Sweep: "sw-1", Seq: 2, JobKey: "b", Digest: "d2"},
		{Type: walEndRec, Sweep: "sw-1", State: "done"},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Records(); got != 4 {
		t.Fatalf("Records() = %d, want 4", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sweeps, n, err := ReplayWAL(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(sweeps) != 1 {
		t.Fatalf("replayed %d records, %d sweeps", n, len(sweeps))
	}
	ws := sweeps["sw-1"]
	if ws == nil || ws.Key != "k" || string(ws.Spec) != string(spec) {
		t.Fatalf("sweep record mangled: %+v", ws)
	}
	if len(ws.Done) != 2 || !ws.Done[1].Cached || ws.Done[2].Digest != "d2" {
		t.Fatalf("done records mangled: %+v", ws.Done)
	}
	if ws.EndState != "done" || ws.maxSeq() != 2 {
		t.Fatalf("end/maxSeq mangled: state=%q maxSeq=%d", ws.EndState, ws.maxSeq())
	}
	// Every record carries the opener's epoch.
	if ws.Done[1].Epoch != 3 {
		t.Fatalf("epoch not stamped: %+v", ws.Done[1])
	}
}

// TestWALEmptyDir: replay over a directory with no WAL files is a no-op,
// and an empty (never-appended) WAL removes its file on Close.
func TestWALEmptyDir(t *testing.T) {
	dir := t.TempDir()
	sweeps, n, err := ReplayWAL(dir, "")
	if err != nil || n != 0 || len(sweeps) != 0 {
		t.Fatalf("empty dir replay = %v, %d, %v", sweeps, n, err)
	}

	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	name := w.Name()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
		t.Fatalf("empty WAL file %s survived Close: %v", name, err)
	}
}

// TestWALTornTail: an unterminated (or unparsable) final line is the
// append a crash interrupted — tolerated, earlier records intact. The
// same garbage mid-file is corruption and errors.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	good := `{"type":"sweep","sweep":"sw-1","key":"k","spec":{}}` + "\n" +
		`{"type":"done","sweep":"sw-1","seq":1,"job_key":"a","digest":"d1"}` + "\n"

	if err := os.WriteFile(filepath.Join(dir, "wal-1-aa.wal"), []byte(good+`{"type":"done","sw`), 0o644); err != nil {
		t.Fatal(err)
	}
	sweeps, n, err := ReplayWAL(dir, "")
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if n != 2 || len(sweeps["sw-1"].Done) != 1 {
		t.Fatalf("replay after torn tail = %d records, %+v", n, sweeps["sw-1"])
	}

	// A terminated-but-unparsable LAST line is still the torn tail.
	if err := os.WriteFile(filepath.Join(dir, "wal-1-aa.wal"), []byte(good+"garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, n, err = ReplayWAL(dir, ""); err != nil || n != 2 {
		t.Fatalf("unparsable final line = %d, %v; want tolerated", n, err)
	}

	// Mid-file garbage is corruption.
	if err := os.WriteFile(filepath.Join(dir, "wal-1-aa.wal"), []byte("garbage\n"+good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err = ReplayWAL(dir, ""); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption error = %v", err)
	}
}

// TestWALEpochFencing: when two WAL files disagree about one (sweep,
// seq) or a terminal state — a fenced-off zombie leader still flushing —
// the record with the higher epoch wins regardless of file order.
func TestWALEpochFencing(t *testing.T) {
	dir := t.TempDir()
	// File name order: the old leader's file (epoch 1) sorts first.
	old := `{"type":"sweep","sweep":"sw-1","key":"k","spec":{},"epoch":1}` + "\n" +
		`{"type":"done","sweep":"sw-1","seq":1,"job_key":"a","digest":"old","epoch":1}` + "\n" +
		`{"type":"end","sweep":"sw-1","state":"failed","error":"zombie","epoch":1}` + "\n"
	niu := `{"type":"done","sweep":"sw-1","seq":1,"job_key":"a","digest":"new","epoch":2}` + "\n" +
		`{"type":"end","sweep":"sw-1","state":"done","epoch":2}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "wal-1-aa.wal"), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-2-bb.wal"), []byte(niu), 0o644); err != nil {
		t.Fatal(err)
	}
	sweeps, _, err := ReplayWAL(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	ws := sweeps["sw-1"]
	if ws.Done[1].Digest != "new" {
		t.Errorf("seq 1 digest = %q, want the epoch-2 record", ws.Done[1].Digest)
	}
	if ws.EndState != "done" || ws.EndError != "" {
		t.Errorf("end state = %q/%q, want the epoch-2 done", ws.EndState, ws.EndError)
	}
	// The spec (only in the old file) still merges in.
	if ws.Key != "k" || ws.Spec == nil {
		t.Errorf("spec lost in merge: %+v", ws)
	}

	// skip parameter: ignoring the newer file flips the winners back.
	sweeps, _, err = ReplayWAL(dir, "wal-2-bb.wal")
	if err != nil {
		t.Fatal(err)
	}
	if ws := sweeps["sw-1"]; ws.Done[1].Digest != "old" || ws.EndState != "failed" {
		t.Errorf("skip did not exclude the file: %+v", ws)
	}
}

// TestWALUnknownRecordType: forward compatibility — a record kind this
// build does not know is skipped, not an error.
func TestWALUnknownRecordType(t *testing.T) {
	dir := t.TempDir()
	data := `{"type":"sweep","sweep":"sw-1","key":"k","spec":{}}` + "\n" +
		`{"type":"compaction-marker","sweep":"sw-1"}` + "\n" +
		`{"type":"done","sweep":"sw-1","seq":1,"job_key":"a","digest":"d1"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "wal-1-aa.wal"), []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	sweeps, n, err := ReplayWAL(dir, "")
	if err != nil || n != 3 {
		t.Fatalf("replay = %d, %v", n, err)
	}
	if ws := sweeps["sw-1"]; len(ws.Done) != 1 || ws.Spec == nil {
		t.Fatalf("known records lost around the unknown one: %+v", sweeps["sw-1"])
	}
}
