package service

import (
	"errors"
	"fmt"
	"strings"
)

// Typed service failures. Every error the HTTP API can answer with
// carries a machine-readable code in its JSON body ({"error", "code",
// "leader"}), and the Client maps the code back to the matching sentinel
// — so errors.Is works identically whether the failure happened in-process
// (library use) or across the wire (secddr-sweep -server).
var (
	// ErrShuttingDown is the terminal error queued work receives when the
	// server stops accepting execution (SIGINT on secddr-serve, or a
	// replica demoting after losing its leader lease). Sweeps failed this
	// way keep their WAL entry open and resume on the next boot.
	ErrShuttingDown = errors.New("service: server shutting down")

	// ErrQuotaExceeded rejects a submission that would push the client's
	// outstanding (not yet completed) jobs past the server's per-client
	// quota (ServerOptions.MaxJobsPerClient). HTTP 429.
	ErrQuotaExceeded = errors.New("service: client quota exceeded")

	// ErrUnknownSweep answers status/stream requests for a sweep ID the
	// server does not know — never submitted here, or submitted to a
	// store this server is not serving. HTTP 404. A client holding a
	// sweep key recovers by re-submitting: the keyed PUT is idempotent.
	ErrUnknownSweep = errors.New("service: unknown sweep")

	// ErrNotLeader answers API calls on a replica that is not the queue
	// leader and has no live leader to proxy to. HTTP 503. When the
	// replica knows the leader, the error is a *NotLeaderError carrying
	// its URL.
	ErrNotLeader = errors.New("service: not the leader")

	// ErrLeaseLost is the internal signal that a replica's leader lease
	// was fenced off (another replica bumped the epoch); the replica
	// demotes itself.
	ErrLeaseLost = errors.New("service: leader lease lost")

	// ErrUnsupportedFidelity rejects a sweep spec whose fidelity block
	// asks for something this server's simulator version does not know —
	// an unknown fidelity mode name, a fidelity field added by a newer
	// build, or knobs without a mode to apply them to. HTTP 400. Honoring
	// the digest contract means never silently dropping a field that
	// shapes results: the client must either downgrade its request or
	// find a newer server.
	ErrUnsupportedFidelity = errors.New("service: unsupported fidelity")
)

// NotLeaderError is ErrNotLeader plus a redirect hint: the URL of the
// replica currently holding the leader lease (empty when unknown).
// errors.Is(err, ErrNotLeader) matches it.
type NotLeaderError struct {
	Leader string
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return ErrNotLeader.Error()
	}
	return fmt.Sprintf("%v (leader at %s)", ErrNotLeader, e.Leader)
}

func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// Error codes carried in HTTP error bodies (wire.go apiError). Keep in
// sync with codeToError below.
const (
	codeShuttingDown        = "shutting_down"
	codeQuota               = "quota_exceeded"
	codeUnknownSweep        = "unknown_sweep"
	codeNotLeader           = "not_leader"
	codeUnsupportedFidelity = "unsupported_fidelity"
)

// errorCode maps an error to its wire code ("" for untyped errors).
func errorCode(err error) string {
	switch {
	case errors.Is(err, ErrShuttingDown):
		return codeShuttingDown
	case errors.Is(err, ErrQuotaExceeded):
		return codeQuota
	case errors.Is(err, ErrUnknownSweep):
		return codeUnknownSweep
	case errors.Is(err, ErrNotLeader):
		return codeNotLeader
	case errors.Is(err, ErrUnsupportedFidelity):
		return codeUnsupportedFidelity
	}
	return ""
}

// codeToError rebuilds the typed error for a wire code, wrapping the
// server's message so both the sentinel and the human text survive the
// round trip. Unknown codes (or none) return nil.
func codeToError(code, msg, leader string) error {
	switch code {
	case codeShuttingDown:
		return wrapSentinel(ErrShuttingDown, msg)
	case codeQuota:
		return wrapSentinel(ErrQuotaExceeded, msg)
	case codeUnknownSweep:
		return wrapSentinel(ErrUnknownSweep, msg)
	case codeNotLeader:
		if leader != "" {
			return fmt.Errorf("service: server: %s: %w", msg, &NotLeaderError{Leader: leader})
		}
		return wrapSentinel(ErrNotLeader, msg)
	case codeUnsupportedFidelity:
		return wrapSentinel(ErrUnsupportedFidelity, msg)
	}
	return nil
}

// wrapSentinel attaches msg to its sentinel without stuttering: server
// messages usually begin with the sentinel's own text (they were built
// by wrapping it), and repeating it would read "unknown sweep: unknown
// sweep: ...".
func wrapSentinel(sentinel error, msg string) error {
	if rest, ok := strings.CutPrefix(msg, sentinel.Error()); ok {
		return fmt.Errorf("%w%s", sentinel, rest)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}
