package service

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"secddr/internal/flock"
)

// The sweep WAL makes submitted sweeps durable: every accepted sweep,
// every per-job completion, and every terminal state is appended as one
// NDJSON record to a per-process write-ahead log in the store directory,
// alongside the resultstore's segments and under the same crash
// discipline (append-only, flocked while owned, torn final lines
// tolerated on replay, no fsync — process-crash-safe, not
// power-loss-safe). On boot the server replays every WAL file in the
// directory, reconciles the recorded completions against the
// resultstore, and re-enqueues only the remainder: a SIGKILLed server
// resumes its sweeps with zero lost and zero re-executed digests.
//
// Records are never rewritten. A "done" record is appended only after
// the digest's result reached the resultstore, so replay can trust that
// a recorded completion is backed by a stored result (a record whose
// digest the store does not know — possible only if the store segment
// itself lost its tail — is dropped and the job simply re-runs from the
// store-or-execute path). Completion records carry the per-sweep
// sequence number that orders the client-visible result stream, so a
// resumed client's ?after=<seq> cursor stays valid across restarts and
// failovers.

// walRecord is one WAL line. Type selects which fields are meaningful:
//
//	"sweep"  Sweep, Key, Spec            — a sweep was accepted
//	"done"   Sweep, Seq, JobKey, Digest, Cached — one job completed
//	"end"    Sweep, State, Error         — the sweep reached a terminal state
//
// Epoch is the appender's leader-lease epoch (0 for a standalone
// server); when two replicas' logs disagree about one (sweep, seq) or
// one terminal state — possible across a failover with a fenced-off
// zombie still flushing — the higher epoch wins.
type walRecord struct {
	Type   string          `json:"type"`
	Epoch  uint64          `json:"epoch,omitempty"`
	Sweep  string          `json:"sweep"`
	Key    string          `json:"key,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Seq    int             `json:"seq,omitempty"`
	JobKey string          `json:"job_key,omitempty"`
	Digest string          `json:"digest,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	State  string          `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
}

const (
	walSweepRec = "sweep"
	walDoneRec  = "done"
	walEndRec   = "end"
)

// walName returns a collision-free WAL file name for this process, the
// same scheme as resultstore segments: pid plus crypto-random suffix.
func walName() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand failed: " + err.Error())
	}
	return fmt.Sprintf("wal-%d-%s.wal", os.Getpid(), hex.EncodeToString(b[:]))
}

// WAL is one process's append-only sweep log. Safe for concurrent use.
type WAL struct {
	dir   string
	epoch uint64

	mu       sync.Mutex
	f        *os.File
	appended int64
}

// OpenWAL creates a fresh, exclusively-flocked WAL file in dir (which
// must exist — it is the result store directory). epoch fences the
// records against logs written by replicas that held the leader lease
// before or after this one.
func OpenWAL(dir string, epoch uint64) (*WAL, error) {
	path := filepath.Join(dir, walName())
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: creating WAL: %w", err)
	}
	if err := flock.LockFile(f); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("service: locking WAL: %w", err)
	}
	return &WAL{dir: dir, epoch: epoch, f: f}, nil
}

// Dir is the directory the WAL (and its peers) live in.
func (w *WAL) Dir() string { return w.dir }

// Epoch is the leader-lease epoch stamped on every record.
func (w *WAL) Epoch() uint64 { return w.epoch }

// Name is the WAL's file name within Dir (so replay can skip it), or ""
// after Close.
func (w *WAL) Name() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ""
	}
	return filepath.Base(w.f.Name())
}

// Append writes one record. Errors are sticky only in the sense that
// the caller decides what to do; the server logs and keeps running (a
// failed append degrades durability, not correctness of the live run).
func (w *WAL) Append(rec walRecord) error {
	rec.Epoch = w.epoch
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: encoding WAL record: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("service: WAL closed")
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("service: appending WAL record: %w", err)
	}
	w.appended++
	return nil
}

// Records reports how many records this WAL has appended (the
// secddr_wal_records_total counter).
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Close releases the flock and removes the file if nothing was ever
// appended (an empty WAL carries no recovery value and would accumulate
// one file per restart).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	name := w.f.Name()
	err := w.f.Close() // releases the flock with it
	w.f = nil
	if w.appended == 0 {
		os.Remove(name)
	}
	return err
}

// walSweep is one sweep's merged replay state across every WAL file.
type walSweep struct {
	ID   string
	Key  string
	Spec json.RawMessage

	// Done maps seq -> completion record (the epoch-winning one).
	Done map[int]walRecord

	// EndState is "" while the sweep was still open at crash time,
	// otherwise the recorded terminal state (done | failed).
	EndState string
	EndError string
	endEpoch uint64
}

// maxSeq returns the highest recorded completion sequence (0 if none).
func (ws *walSweep) maxSeq() int {
	max := 0
	for seq := range ws.Done { //lint:detrange-ok integer max is order-insensitive
		if seq > max {
			max = seq
		}
	}
	return max
}

// ReplayWAL reads every WAL file in dir (file-name order, so replay is
// deterministic) and merges the records per sweep. It returns the
// merged sweeps and the total record count. skip names one file to
// ignore — the replayer's own freshly created WAL.
//
// Per-file torn-tail rule, identical to resultstore segments: an
// unterminated or unparsable final line is the write the crash
// interrupted and is skipped; an unparsable line anywhere else is
// corruption and errors.
func ReplayWAL(dir, skip string) (map[string]*walSweep, int, error) {
	names, err := walNames(dir)
	if err != nil {
		return nil, 0, err
	}
	sweeps := make(map[string]*walSweep)
	total := 0
	for _, name := range names {
		if name == skip {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, 0, fmt.Errorf("service: reading WAL %s: %w", name, err)
		}
		n, err := replayFile(sweeps, data)
		if err != nil {
			return nil, 0, fmt.Errorf("service: WAL %s: %w", name, err)
		}
		total += n
	}
	return sweeps, total, nil
}

// walNames lists WAL files in dir sorted by name.
func walNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("service: reading WAL dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && len(name) > 8 && name[:4] == "wal-" && filepath.Ext(name) == ".wal" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// replayFile folds one WAL file's records into sweeps, returning how
// many records it applied.
func replayFile(sweeps map[string]*walSweep, data []byte) (int, error) {
	applied := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		terminated := nl >= 0
		if terminated {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if !terminated || len(data) == 0 {
				// The torn tail: the append a crash cut short.
				return applied, nil
			}
			return applied, fmt.Errorf("corrupt record mid-file: %w", err)
		}
		if rec.Sweep == "" {
			return applied, fmt.Errorf("record without sweep id")
		}
		applyRecord(sweeps, rec)
		applied++
	}
	return applied, nil
}

// applyRecord merges one record, resolving duplicates by epoch (higher
// wins; equal epochs keep the first seen, i.e. file-name order).
func applyRecord(sweeps map[string]*walSweep, rec walRecord) {
	ws := sweeps[rec.Sweep]
	if ws == nil {
		ws = &walSweep{ID: rec.Sweep, Done: make(map[int]walRecord)}
		sweeps[rec.Sweep] = ws
	}
	switch rec.Type {
	case walSweepRec:
		if ws.Spec == nil {
			ws.Key, ws.Spec = rec.Key, rec.Spec
		}
	case walDoneRec:
		if prev, dup := ws.Done[rec.Seq]; !dup || rec.Epoch > prev.Epoch {
			ws.Done[rec.Seq] = rec
		}
	case walEndRec:
		if ws.EndState == "" || rec.Epoch > ws.endEpoch {
			ws.EndState, ws.EndError, ws.endEpoch = rec.State, rec.Error, rec.Epoch
		}
	}
	// Unknown types are skipped: a newer server's record kinds must not
	// brick an older replica replaying the shared directory.
}
