package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"secddr/internal/obs"
)

// famValue extracts a family's single unlabelled sample, failing the test
// if the family or sample is missing.
func famValue(t *testing.T, fams map[string]*obs.MetricFamily, name string) float64 {
	t.Helper()
	f, ok := fams[name]
	if !ok {
		t.Fatalf("/metrics missing family %q", name)
	}
	v, ok := f.Value()
	if !ok {
		t.Fatalf("family %q has no bare sample", name)
	}
	return v
}

// histCount returns a histogram family's _count sample.
func histCount(t *testing.T, fams map[string]*obs.MetricFamily, name string) float64 {
	t.Helper()
	f, ok := fams[name]
	if !ok {
		t.Fatalf("/metrics missing histogram %q", name)
	}
	if f.Type != "histogram" {
		t.Fatalf("family %q has type %q, want histogram", name, f.Type)
	}
	for _, s := range f.Samples {
		if s.Name == name+"_count" {
			return s.Value
		}
	}
	t.Fatalf("histogram %q has no _count sample", name)
	return 0
}

// TestObservabilityEndpoints: /metrics must parse as valid Prometheus
// text exposition (the obs parser validates headers, sample syntax, and
// histogram bucket monotonicity), carry the build-info gauge, and agree
// with itself — each latency histogram counts exactly the events the
// scheduling counters report. /healthz must serve the JSON readiness
// document.
func TestObservabilityEndpoints(t *testing.T) {
	srv := NewServer(newMemStore(), ServerOptions{Workers: 2})
	srv.runSim = fakeSim
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}
	if _, _, err := cl.RunRemote(context.Background(), tinySpec(), nil); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("metrics = %v, %v", resp, err)
	}
	fams, err := obs.ParseExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v", err)
	}

	if got := famValue(t, fams, "secddr_sims_executed_total"); got != 4 {
		t.Errorf("sims_executed_total = %g, want 4", got)
	}
	bi, ok := fams["secddr_build_info"]
	if !ok || len(bi.Samples) != 1 {
		t.Fatalf("build_info family = %+v", bi)
	}
	if l := bi.Samples[0].Labels; l["version"] == "" || l["revision"] == "" {
		t.Errorf("build_info labels = %v, want version and revision", l)
	}

	// Every executed job was leased exactly once (waited in the queue,
	// then held a lease until completion), ran one simulation on the local
	// pool, and flushed one fresh result; no requeue happened, so all four
	// histograms count the four executed digests.
	for _, h := range []string{
		"secddr_queue_wait_us", "secddr_lease_duration_us",
		"secddr_job_sim_wall_us", "secddr_store_flush_us",
	} {
		if got := histCount(t, fams, h); got != 4 {
			t.Errorf("%s_count = %g, want 4", h, got)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	var hs HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	resp.Body.Close()
	if hs.Status != "ok" || hs.Store != "ok" || hs.QueueDepth != 0 {
		t.Errorf("healthz = %+v, want ok/ok/0", hs)
	}
}
