package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"secddr/internal/resultstore"
	"secddr/internal/sim"
)

// TestCrashRecovery is the durability contract end to end: server 1
// completes two of a sweep's four jobs (results in the store, done
// records in the WAL) and dies with the other two unfinished; server 2
// boots over the same directory, replays the WAL, and finishes the
// sweep. Every digest executes exactly once across both lives, the two
// replayed completions come back under their original sequence numbers,
// and a cursor-resuming stream is byte-identical to a fresh one.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec() // 4 jobs, 4 distinct digests
	const key = "crashy"
	id, err := SweepID(key, spec)
	if err != nil {
		t.Fatal(err)
	}

	// One execution ledger across both server lives.
	var mu sync.Mutex
	executed := map[string]int{}
	countingSim := func(o sim.Options) (sim.Result, error) {
		mu.Lock()
		executed[o.Digest()]++
		mu.Unlock()
		return fakeSim(o)
	}

	// --- Life 1: run two jobs, die with two queued. ---
	store1, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wal1, err := OpenWAL(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(store1, ServerOptions{Workers: 2, WAL: wal1, Epoch: 1})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv1.runSim = func(o sim.Options) (sim.Result, error) {
		started <- struct{}{}
		<-release
		return countingSim(o)
	}
	sw1, attached, err := srv1.SubmitKeyed(key, spec)
	if err != nil || attached {
		t.Fatalf("submit = attached %v, %v", attached, err)
	}
	// Both pool workers are now holding a job; the other two sit queued.
	<-started
	<-started
	// "Crash": queued jobs fail with ErrShuttingDown (resumable — no WAL
	// end record), then the in-flight pair finishes and lands in store
	// and WAL, exactly like a SIGTERM arriving mid-sweep.
	srv1.Shutdown()
	close(release)
	if st := waitState(t, sw1); st.State != string(stateFailed) {
		t.Fatalf("interrupted sweep state = %q, want failed", st.State)
	}
	srv1.Drain()
	if n := wal1.Records(); n != 3 { // 1 sweep + 2 done, no end record
		t.Fatalf("WAL records at death = %d, want 3", n)
	}
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// --- Life 2: boot over the same directory and recover. ---
	store2, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	wal2, err := OpenWAL(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	srv2 := NewServer(store2, ServerOptions{Workers: 2, WAL: wal2, Epoch: 2})
	srv2.runSim = countingSim
	resumed, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("Recover() resumed %d sweeps, want 1", resumed)
	}
	sw2, ok := srv2.lookupSweep(id)
	if !ok {
		t.Fatalf("recovered server does not know sweep %s", id)
	}
	st := waitState(t, sw2)
	if st.State != string(stateDone) {
		t.Fatalf("recovered sweep state = %q (%s), want done", st.State, st.Error)
	}
	if st.Stats.Recovered != 2 {
		t.Errorf("stats.Recovered = %d, want 2 (the replayed completions)", st.Stats.Recovered)
	}
	if got := st.Stats.Executed + st.Stats.Cached; got != 4 {
		t.Errorf("executed+cached = %d, want total 4 (%+v)", got, st.Stats)
	}

	// Zero lost, zero duplicated: each digest ran exactly once across
	// both lives.
	mu.Lock()
	if len(executed) != 4 {
		t.Errorf("%d digests executed, want 4: %v", len(executed), executed)
	}
	for d, n := range executed {
		if n != 1 {
			t.Errorf("digest %s executed %d times, want 1", d, n)
		}
	}
	mu.Unlock()

	// Cursor resume is byte-identical: a client that consumed the stream
	// up to some seq and reconnects with ?after= gets exactly the lines
	// it is missing, bytes unchanged.
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	full := streamLines(t, ts.URL+"/v1/sweeps/"+id+"/results")
	if len(full) != 5 { // 4 results + end sentinel
		t.Fatalf("full stream = %d lines, want 5: %q", len(full), full)
	}
	var second StreamItem
	if err := json.Unmarshal([]byte(full[1]), &second); err != nil {
		t.Fatal(err)
	}
	resumedLines := streamLines(t, ts.URL+"/v1/sweeps/"+id+"/results?after="+itoa(second.Seq))
	want := full[2:]
	if len(resumedLines) != len(want) {
		t.Fatalf("resumed stream = %d lines, want %d", len(resumedLines), len(want))
	}
	for i := range want {
		if resumedLines[i] != want[i] {
			t.Errorf("resumed line %d differs:\n got %s\nwant %s", i, resumedLines[i], want[i])
		}
	}

	srv2.Shutdown()
	srv2.Drain()
}

// streamLines fetches an NDJSON result stream and returns its raw lines.
func streamLines(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestRecoveryTerminalSweep: a sweep whose WAL entry carries an end
// record is re-registered read-only — status and the full stream stay
// available after restart, but nothing re-runs.
func TestRecoveryTerminalSweep(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	const key = "finished"
	id, err := SweepID(key, spec)
	if err != nil {
		t.Fatal(err)
	}

	store1, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wal1, err := OpenWAL(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(store1, ServerOptions{Workers: 2, WAL: wal1, Epoch: 1})
	srv1.runSim = fakeSim
	sw1, _, err := srv1.SubmitKeyed(key, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, sw1); st.State != string(stateDone) {
		t.Fatalf("sweep state = %q, want done", st.State)
	}
	srv1.Shutdown()
	srv1.Drain()
	wal1.Close()
	store1.Close()

	store2, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	wal2, err := OpenWAL(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	srv2 := NewServer(store2, ServerOptions{Workers: 2, WAL: wal2, Epoch: 2})
	srv2.runSim = func(o sim.Options) (sim.Result, error) {
		t.Errorf("terminal sweep re-ran digest %s", o.Digest())
		return fakeSim(o)
	}
	resumed, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("Recover() resumed %d, want 0 (sweep was terminal)", resumed)
	}
	sw2, ok := srv2.lookupSweep(id)
	if !ok {
		t.Fatalf("terminal sweep %s not re-registered", id)
	}
	st := sw2.status()
	if st.State != string(stateDone) || st.Done != 4 {
		t.Fatalf("restored terminal sweep = %+v, want done with 4 results", st)
	}
	srv2.Shutdown()
	srv2.Drain()
}
