package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"secddr/internal/harness"
	"secddr/internal/obs"
	"secddr/internal/resultstore"
	"secddr/internal/sim"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ServerOptions tunes a sweep server. The zero value is usable.
type ServerOptions struct {
	// Workers sizes the in-process execution pool (the LocalExecutor):
	// 0 means GOMAXPROCS, a negative value disables local execution
	// entirely — the server then only queues work for remote
	// secddr-worker processes (fleet-only mode).
	Workers int
	// BaseContext, when non-nil, bounds the lifetime of background sweep
	// execution: once it is cancelled no new simulation starts.
	BaseContext context.Context
	// Log, when non-nil, receives structured progress events — sweep
	// lifecycle, job failures, remote uploads — each carrying its sweep id
	// and/or job digest as attributes so one job's history greps out of
	// interleaved server and worker logs. Nil discards them.
	Log *slog.Logger

	// WAL, when non-nil, makes sweeps durable: specs, completions, and
	// terminal states are logged so Recover() on a fresh server over the
	// same store resumes interrupted sweeps. Nil keeps the pre-WAL
	// in-memory behavior (tests, embedded use).
	WAL *WAL
	// Epoch is the leader-lease epoch for /metrics; the WAL stamps its
	// own epoch on records. 0 for a standalone server.
	Epoch uint64
	// MaxJobsPerClient caps one client's outstanding (not yet completed)
	// jobs across its running sweeps; a submission that would exceed it
	// fails with ErrQuotaExceeded. 0 means unlimited.
	MaxJobsPerClient int
}

// Server runs sweep campaigns behind an HTTP API. All sweeps share one
// result store, one job queue, and one in-flight table: a digest being
// simulated for any client is never simulated again for another — late
// arrivals join the running flight (singleflight dedup), regardless of
// whether the flight executes on the in-process pool or on a remote
// worker that leased it.
//
// With a WAL attached (ServerOptions.WAL), submissions survive the
// process: Recover() replays the directory's logs, counts completions
// whose results the store still holds as done, and re-enqueues only the
// remainder.
type Server struct {
	store        harness.Store
	queue        *Queue
	fleet        *fleetExecutor
	localWorkers int                // 0 in fleet-only mode
	stopExec     context.CancelFunc // stops the attached executors
	metrics      *serverMetrics     // latency histograms served by /metrics
	log          *slog.Logger       // structured progress; a discard logger when unset
	wal          *WAL               // nil: ephemeral sweeps
	epoch        uint64
	maxPerClient int

	// runSim is the simulation entry point; tests substitute a counting
	// or blocking stub.
	runSim func(sim.Options) (sim.Result, error)

	mu       sync.Mutex
	sweeps   map[string]*sweep
	inflight map[string]*flight
	running  sync.WaitGroup // one per background runSweep

	// Cumulative counters served by /metrics.
	simsExecuted    int64 // simulations actually run
	jobsCached      int64 // jobs served straight from the store
	jobsDeduped     int64 // jobs that joined an in-flight or in-batch digest
	sweepsTotal     int64
	sweepsRecovered int64 // sweeps resumed from the WAL at boot
	walReplayed     int64 // WAL records replayed at boot
	quotaRejected   int64 // submissions rejected by the per-client quota
	simsRunning     int   // gauge: local simulations currently executing
}

// flight is one in-progress execution of a digest (singleflight cell).
type flight struct {
	done chan struct{} // closed when res/err are final
	res  sim.Result
	err  error
	via  string // viaRan | viaStored | viaFailed
}

// NewServer builds a sweep server over a result store and attaches its
// executors: the local pool (unless opt.Workers < 0) and the remote
// fleet's lease surface, both draining one queue.
func NewServer(store harness.Store, opt ServerOptions) *Server {
	workers := opt.Workers
	if workers == 0 {
		workers = defaultWorkers()
	}
	if workers < 0 {
		workers = 0
	}
	base := opt.BaseContext
	if base == nil {
		base = context.Background()
	}
	// Executors stop on BaseContext *or* Shutdown, whichever comes first,
	// so a library user without a BaseContext still gets their goroutines
	// (pool + reaper) back by calling Shutdown.
	execCtx, stopExec := context.WithCancel(base)
	logger := opt.Log
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		store:        store,
		queue:        newQueue(store.Lookup),
		fleet:        newFleetExecutor(),
		localWorkers: workers,
		stopExec:     stopExec,
		metrics:      newServerMetrics(),
		log:          logger,
		wal:          opt.WAL,
		epoch:        opt.Epoch,
		maxPerClient: opt.MaxJobsPerClient,
		runSim:       sim.Run,
		sweeps:       make(map[string]*sweep),
		inflight:     make(map[string]*flight),
	}
	s.queue.observeWait = s.metrics.observeQueueWait
	s.queue.observeLease = s.metrics.observeLeaseDur
	s.fleet.Attach(execCtx, s.queue)
	if workers > 0 {
		local := &LocalExecutor{
			Workers: workers,
			Sim:     func(o sim.Options) (sim.Result, error) { return s.runSim(o) },
			Running: s.trackRunning,
			Observe: s.metrics.observeSimWall,
		}
		local.Attach(execCtx, s.queue)
	}
	// Whichever way execution stops — BaseContext cancelled or Shutdown
	// called — the queue must close with it, so sweeps blocked on queued
	// work fail with ErrShuttingDown instead of waiting on executors that
	// no longer exist (the pre-fleet contract: cancelling BaseContext
	// stops new simulations promptly).
	go func() {
		<-execCtx.Done()
		s.queue.Shutdown()
	}()
	return s
}

func (s *Server) trackRunning(delta int) {
	s.mu.Lock()
	s.simsRunning += delta
	s.mu.Unlock()
}

// Shutdown stops execution for good: remote workers can no longer lease,
// every pending or remote-leased job fails its flight with
// ErrShuttingDown, jobs the in-process pool already started run to
// completion (their results still reach the store), and the executor
// goroutines (pool + lease reaper) exit. Call it before Drain so sweeps
// blocked on unacked remote work fail promptly instead of waiting on
// workers that may never answer.
//
// With a WAL attached, sweeps failed by ErrShuttingDown keep their WAL
// entry open (no terminal record), so the next boot over the same store
// resumes them — graceful shutdown and SIGKILL converge on the same
// recovery path.
func (s *Server) Shutdown() {
	s.queue.Shutdown()
	s.stopExec()
}

// sweepState is the lifecycle of one submitted sweep.
type sweepState string

const (
	stateRunning sweepState = "running"
	stateDone    sweepState = "done"
	stateFailed  sweepState = "failed"
)

// sweep is one submitted campaign and its accumulating results.
type sweep struct {
	id       string
	key      string // client-supplied submission key
	client   string
	priority int
	total    int
	started  time.Time

	mu      sync.Mutex
	results []StreamItem // completion order; streamed as NDJSON
	nextSeq int          // next stream sequence number to assign (starts at 1)
	stats   harness.Stats
	state   sweepState
	errMsg  string
	failErr error         // first job failure (errors.Is-able; errMsg is its text)
	changed chan struct{} // closed and replaced on every mutation
}

func newSweep(id, key, client string, priority, total int) *sweep {
	sw := &sweep{
		id: id, key: key, client: client, priority: priority,
		total:   total,
		started: time.Now(),
		state:   stateRunning,
		nextSeq: 1,
		changed: make(chan struct{}),
	}
	sw.stats.Total = total
	return sw
}

// SweepStatus is the GET /v1/sweeps/{id} document. ElapsedMS counts from
// submission (or recovery); EtaMS is the linear-rate projection of the
// time remaining, present only while the sweep is running and at least
// one point has finished (cached points complete instantly, so early
// estimates skew optimistic and converge as executed points land).
type SweepStatus struct {
	ID        string        `json:"id"`
	Key       string        `json:"key,omitempty"`
	State     string        `json:"state"` // running | done | failed
	Total     int           `json:"total"`
	Done      int           `json:"done"`
	Stats     harness.Stats `json:"stats"`
	ElapsedMS int64         `json:"elapsed_ms"`
	EtaMS     int64         `json:"eta_ms,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// SubmitResponse is the submission answer (PUT /v1/sweeps/{key} and the
// POST shim). Attached reports that the (key, spec) pair matched an
// already-registered sweep and the request joined it instead of starting
// a duplicate.
type SubmitResponse struct {
	ID         string `json:"id"`
	Key        string `json:"key,omitempty"`
	Total      int    `json:"total"`
	Attached   bool   `json:"attached,omitempty"`
	StatusURL  string `json:"status_url"`
	ResultsURL string `json:"results_url"`
}

// notifyLocked wakes every streamer waiting on this sweep.
func (sw *sweep) notifyLocked() {
	close(sw.changed)
	sw.changed = make(chan struct{})
}

func (sw *sweep) status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{
		ID:        sw.id,
		Key:       sw.key,
		State:     string(sw.state),
		Total:     sw.total,
		Done:      len(sw.results),
		Stats:     sw.stats,
		ElapsedMS: time.Since(sw.started).Milliseconds(),
		Error:     sw.errMsg,
	}
	if sw.state == stateRunning && st.Done > 0 && st.Done < st.Total {
		st.EtaMS = st.ElapsedMS * int64(st.Total-st.Done) / int64(st.Done)
	}
	return st
}

// randomKey generates a submission key for the keyless POST shim.
func randomKey() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand failed: " + err.Error())
	}
	return "auto-" + hex.EncodeToString(b[:])
}

// Submit registers a sweep under a generated key — the legacy
// fire-and-forget entry point (POST /v1/sweeps). Each call starts a
// fresh sweep; use SubmitKeyed for idempotent submission.
func (s *Server) Submit(spec Spec) (*sweep, error) {
	sw, _, err := s.SubmitKeyed(randomKey(), spec)
	return sw, err
}

// SubmitKeyed validates a spec and registers the sweep under the
// client-supplied key. The sweep ID derives from (key, spec), so
// re-submitting the same pair — a client retry after a crash on either
// side — attaches to the existing sweep (attached=true) instead of
// starting a duplicate. With a WAL attached the submission is logged
// before execution starts, making it durable across server restarts.
func (s *Server) SubmitKeyed(key string, spec Spec) (*sweep, bool, error) {
	if err := validateSweepKey(key); err != nil {
		return nil, false, err
	}
	id, err := SweepID(key, spec)
	if err != nil {
		return nil, false, err
	}
	grid, err := spec.Grid()
	if err != nil {
		return nil, false, err
	}
	jobs := grid.Jobs()
	if len(jobs) == 0 {
		return nil, false, fmt.Errorf("service: sweep expands to zero jobs")
	}

	s.mu.Lock()
	if sw, ok := s.sweeps[id]; ok {
		s.mu.Unlock()
		s.log.Info("sweep re-submitted, attaching", "sweep", id, "key", key)
		return sw, true, nil
	}
	if s.maxPerClient > 0 {
		outstanding := 0
		for _, other := range s.sweeps { //lint:detrange-ok summation under a lock is order-insensitive
			if other.client != spec.Client {
				continue
			}
			other.mu.Lock()
			if other.state == stateRunning {
				outstanding += other.total - len(other.results)
			}
			other.mu.Unlock()
		}
		if outstanding+len(jobs) > s.maxPerClient {
			s.quotaRejected++
			s.mu.Unlock()
			return nil, false, fmt.Errorf("%w: client %q has %d jobs outstanding, sweep adds %d, quota is %d",
				ErrQuotaExceeded, spec.Client, outstanding, len(jobs), s.maxPerClient)
		}
	}
	sw := newSweep(id, key, spec.Client, spec.Priority, len(jobs))
	s.sweeps[id] = sw
	s.sweepsTotal++
	s.running.Add(1)
	s.mu.Unlock()

	if s.wal != nil {
		raw, err := json.Marshal(spec)
		if err == nil {
			err = s.wal.Append(walRecord{Type: walSweepRec, Sweep: id, Key: key, Spec: raw})
		}
		if err != nil {
			// Durability degrades, the live sweep still runs.
			s.log.Error("WAL sweep record failed", "sweep", id, "err", err)
		}
	}

	s.log.Info("sweep submitted", "sweep", id, "key", key, "client", spec.Client,
		"priority", spec.Priority, "jobs", len(jobs))
	go func() {
		defer s.running.Done()
		s.runSweep(sw, jobs)
	}()
	return sw, false, nil
}

// Recover replays every WAL file in the store directory (except this
// server's own), reconciles recorded completions against the result
// store, and resumes unfinished sweeps: completions whose results the
// store holds are replayed into the result stream under their original
// sequence numbers, and only the remaining jobs are re-enqueued — so a
// SIGKILLed server's sweeps finish with zero lost and zero re-executed
// digests. Terminal sweeps are re-registered read-only so clients can
// still fetch their status and streams. Call it once, after NewServer
// and before serving traffic. It returns the number of sweeps resumed.
func (s *Server) Recover() (int, error) {
	if s.wal == nil {
		return 0, nil
	}
	replayed, nrec, err := ReplayWAL(s.wal.Dir(), s.wal.Name())
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.walReplayed = int64(nrec)
	s.mu.Unlock()
	if len(replayed) == 0 {
		return 0, nil
	}

	// Deterministic recovery order (the replay map is keyed by sweep id).
	ids := make([]string, 0, len(replayed))
	for id := range replayed {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	resumed := 0
	for _, id := range ids {
		ws := replayed[id]
		if ws.Spec == nil {
			// The sweep record itself was in a torn tail: nothing to
			// re-derive the job set from. The submitting client's keyed
			// retry will start it over.
			s.log.Warn("WAL has completions but no spec; skipping", "sweep", id)
			continue
		}
		var spec Spec
		if err := json.Unmarshal(ws.Spec, &spec); err != nil {
			s.log.Warn("WAL spec does not decode; skipping", "sweep", id, "err", err)
			continue
		}
		grid, err := spec.Grid()
		if err != nil {
			s.log.Warn("WAL spec no longer expands; skipping", "sweep", id, "err", err)
			continue
		}
		jobs := grid.Jobs()
		sw := newSweep(id, ws.Key, spec.Client, spec.Priority, len(jobs))
		sw.nextSeq = ws.maxSeq() + 1 // never reuse a seq a client may have consumed

		jobByKey := make(map[string]harness.Job, len(jobs))
		for _, j := range jobs {
			jobByKey[j.Key] = j
		}
		seqs := make([]int, 0, len(ws.Done))
		for seq := range ws.Done {
			seqs = append(seqs, seq)
		}
		sort.Ints(seqs)
		replayedKeys := make(map[string]bool, len(seqs))
		for _, seq := range seqs {
			rec := ws.Done[seq]
			j, ok := jobByKey[rec.JobKey]
			if !ok || replayedKeys[rec.JobKey] {
				continue
			}
			res, ok := s.store.Lookup(rec.Digest)
			if !ok {
				// The WAL promised a completion the store cannot back
				// (its segment lost the record's tail): drop the claim,
				// the job re-runs and re-completes under a fresh seq.
				s.log.Warn("WAL completion without stored result; job re-runs",
					"sweep", id, "key", rec.JobKey, "digest", rec.Digest)
				continue
			}
			sw.results = append(sw.results, StreamItem{
				Seq: rec.Seq,
				Outcome: harness.Outcome{
					Key:      rec.JobKey,
					Workload: j.Opt.WorkloadName(),
					Mode:     j.Opt.Config.Security.Mode.String(),
					Digest:   rec.Digest,
					Cached:   rec.Cached,
					Result:   res,
				},
			})
			replayedKeys[rec.JobKey] = true
			sw.stats.Recovered++
			if rec.Cached {
				sw.stats.Cached++
			} else {
				sw.stats.Executed++
			}
		}

		if ws.EndState != "" {
			sw.state, sw.errMsg = sweepState(ws.EndState), ws.EndError
			s.mu.Lock()
			s.sweeps[id] = sw
			s.sweepsTotal++
			s.mu.Unlock()
			continue
		}

		remaining := make([]harness.Job, 0, len(jobs)-len(replayedKeys))
		for _, j := range jobs {
			if !replayedKeys[j.Key] {
				remaining = append(remaining, j)
			}
		}
		s.mu.Lock()
		s.sweeps[id] = sw
		s.sweepsTotal++
		s.sweepsRecovered++
		s.running.Add(1)
		s.mu.Unlock()
		resumed++
		s.log.Info("sweep recovered", "sweep", id, "key", ws.Key,
			"replayed", len(replayedKeys), "remaining", len(remaining))
		go func(sw *sweep, remaining []harness.Job) {
			defer s.running.Done()
			s.runSweep(sw, remaining)
		}(sw, remaining)
	}
	return resumed, nil
}

// Drain blocks until every submitted sweep has finished executing. Call
// it after cancelling BaseContext (which stops new simulations) and
// before closing the store, so results of in-flight simulations reach
// the store instead of dying with the process.
func (s *Server) Drain() { s.running.Wait() }

// resumableFailure reports whether a sweep failure must keep the WAL
// entry open: shutdown and leadership loss are process-lifecycle events,
// not verdicts on the sweep, and the next boot (or the new leader)
// resumes the sweep where it stopped.
func resumableFailure(err error) bool {
	return errors.Is(err, ErrShuttingDown) || errors.Is(err, ErrNotLeader)
}

// runSweep executes a sweep's jobs: store hits complete immediately, the
// rest run on the shared pool with one flight per distinct digest.
func (s *Server) runSweep(sw *sweep, jobs []harness.Job) {
	// Group jobs by digest, preserving first-seen order.
	type group struct {
		opt  sim.Options
		jobs []harness.Job
	}
	groups := make(map[string]*group)
	var order []string
	for _, j := range jobs {
		d := j.Opt.Digest()
		g, ok := groups[d]
		if !ok {
			g = &group{opt: j.Opt}
			groups[d] = g
			order = append(order, d)
		}
		g.jobs = append(g.jobs, j)
	}

	var wg sync.WaitGroup
	for _, d := range order {
		g := groups[d]

		// Store hit: every job of the digest completes right now.
		if res, ok := s.store.Lookup(d); ok {
			s.completeGroup(sw, d, g.jobs, res, true, len(g.jobs))
			continue
		}

		wg.Add(1)
		go func(d string, g *group) {
			defer wg.Done()
			res, how, err := s.runDigest(d, g.jobs[0].Key, sw.client, sw.priority, g.opt)
			if err != nil {
				s.log.Error("job failed", "sweep", sw.id, "digest", d, "key", g.jobs[0].Key, "err", err)
				sw.mu.Lock()
				if sw.failErr == nil {
					sw.failErr = err
					sw.errMsg = fmt.Sprintf("%s: %v", g.jobs[0].Key, err)
				}
				sw.notifyLocked()
				sw.mu.Unlock()
				return
			}
			// The flight leader counts one execution (or a late store
			// hit); every extra job — in-batch duplicates and joined
			// flights alike — is a dedup.
			cachedJobs := 0
			switch how {
			case ranSim:
				deduped := len(g.jobs) - 1
				s.addCounts(1, 0, int64(deduped))
				sw.mu.Lock()
				sw.stats.Executed++
				sw.stats.Deduped += deduped
				sw.mu.Unlock()
			case joinedFlight:
				s.addCounts(0, 0, int64(len(g.jobs)))
				sw.mu.Lock()
				sw.stats.Deduped += len(g.jobs)
				sw.mu.Unlock()
			case lateStoreHit:
				cachedJobs = len(g.jobs)
			}
			s.completeGroup(sw, d, g.jobs, res, how != ranSim, cachedJobs)
		}(d, g)
	}
	wg.Wait()

	sw.mu.Lock()
	if sw.failErr != nil {
		sw.state = stateFailed
	} else {
		sw.state = stateDone
	}
	state, stats, failErr, errMsg := sw.state, sw.stats, sw.failErr, sw.errMsg
	sw.notifyLocked()
	sw.mu.Unlock()
	// A terminal WAL record seals the sweep — except for failures that
	// mean "this process stopped", which the next boot resumes.
	if s.wal != nil && !resumableFailure(failErr) {
		if err := s.wal.Append(walRecord{Type: walEndRec, Sweep: sw.id, State: string(state), Error: errMsg}); err != nil {
			s.log.Error("WAL end record failed", "sweep", sw.id, "err", err)
		}
	}
	s.log.Info("sweep finished", "sweep", sw.id, "state", string(state),
		"executed", stats.Executed, "cached", stats.Cached, "deduped", stats.Deduped,
		"recovered", stats.Recovered,
		"elapsed", time.Since(sw.started).Round(time.Millisecond))
}

// completeGroup appends one outcome per job of a finished digest,
// assigning each its stream sequence number and logging the completions
// to the WAL before publication — so any line a client has seen is
// backed by both a stored result and a WAL record.
// cachedJobs is the store-hit accounting (executed/joined digests were
// already folded into the stats by the caller and pass 0).
func (s *Server) completeGroup(sw *sweep, digest string, jobs []harness.Job, res sim.Result, cached bool, cachedJobs int) {
	if cachedJobs > 0 {
		s.addCounts(0, int64(cachedJobs), 0)
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.stats.Cached += cachedJobs
	for _, j := range jobs {
		seq := sw.nextSeq
		sw.nextSeq++
		item := StreamItem{
			Seq: seq,
			Outcome: harness.Outcome{
				Key:      j.Key,
				Workload: j.Opt.WorkloadName(),
				Mode:     j.Opt.Config.Security.Mode.String(),
				Digest:   digest,
				Cached:   cached,
				Result:   res,
			},
		}
		if s.wal != nil {
			// Held under sw.mu so the sweep's done records land in the
			// file in seq order (replay sorts anyway; the order makes
			// the log greppable). The result itself is already in the
			// store — runDigest records before publishing — so a crash
			// between store append and this line just re-completes the
			// job as a store hit on recovery.
			if err := s.wal.Append(walRecord{
				Type: walDoneRec, Sweep: sw.id, Seq: seq,
				JobKey: j.Key, Digest: digest, Cached: cached,
			}); err != nil {
				s.log.Error("WAL done record failed", "sweep", sw.id, "key", j.Key, "err", err)
			}
		}
		sw.results = append(sw.results, item)
	}
	sw.notifyLocked()
}

func (s *Server) addCounts(executed, cached, deduped int64) {
	s.mu.Lock()
	s.simsExecuted += executed
	s.jobsCached += cached
	s.jobsDeduped += deduped
	s.mu.Unlock()
}

// How a digest was satisfied by runDigest. The first two mirror the
// queue's viaRan/viaStored; joinedFlight is decided here (a caller that
// found an existing flight and shared its outcome).
const (
	ranSim       = viaRan
	joinedFlight = "joined"
	lateStoreHit = viaStored
)

// runDigest produces the result for one digest, executing at most once
// across every concurrent sweep: the first caller becomes the flight
// leader and enqueues one job (registered before any executor takes it,
// so queued work dedups too); later callers block on the flight and share
// its outcome. Which executor completes the job — the in-process pool or
// a remote worker's result upload — is invisible here: both resolve the
// flight through the same finish callback, which routes the result
// through the shared store first.
func (s *Server) runDigest(d, key, client string, priority int, opt sim.Options) (sim.Result, string, error) {
	s.mu.Lock()
	if f, ok := s.inflight[d]; ok {
		s.mu.Unlock()
		<-f.done
		return f.res, joinedFlight, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[d] = f
	s.mu.Unlock()

	finish := func(res sim.Result, err error, via string) {
		if err == nil && via == viaRan {
			// Freshly executed (locally or uploaded by a worker): persist
			// before publishing, so a result a sweep has seen is never
			// lost to a crash.
			start := time.Now()
			err = s.store.Record(d, res)
			s.metrics.observeStoreFlush(time.Since(start))
		}
		f.res, f.err, f.via = res, err, via
		s.mu.Lock()
		delete(s.inflight, d)
		s.mu.Unlock()
		close(f.done)
	}
	if err := s.queue.Enqueue(d, key, client, priority, opt, finish); err != nil {
		finish(sim.Result{}, err, viaFailed)
	}
	<-f.done
	return f.res, f.via, f.err
}

// Handler returns the HTTP API:
//
//	PUT  /v1/sweeps/{key}          idempotent keyed submit, 202 (200 if attached) + SubmitResponse
//	POST /v1/sweeps                legacy shim: submit under a generated key
//	GET  /v1/sweeps/{id}           SweepStatus
//	GET  /v1/sweeps/{id}/results   NDJSON stream; ?after=<seq> resumes from a cursor
//	GET  /v1/results/{digest}      one stored result
//	POST /v1/jobs/lease            worker: lease queued jobs (long-poll)
//	POST /v1/jobs/{digest}/result  worker: upload a result or error (ack)
//	POST /v1/jobs/{digest}/release worker: return an unrun lease
//	POST /v1/workers/heartbeat     worker: extend held leases
//	GET  /healthz                  JSON readiness (store writability, queue depth)
//	GET  /metrics                  Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/sweeps/{key}", s.handleSubmitKeyed)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/results/{digest}", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/lease", s.handleLease)
	mux.HandleFunc("POST /v1/jobs/{digest}/result", s.handleJobResult)
	mux.HandleFunc("POST /v1/jobs/{digest}/release", s.handleJobRelease)
	mux.HandleFunc("POST /v1/workers/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// validWorkerID rejects empty ids and the reserved "!" prefix ("!local"
// marks in-process leases, which never expire and survive Shutdown — a
// remote worker must not be able to claim, complete, or wedge those).
func validWorkerID(w http.ResponseWriter, id string) bool {
	if id == "" {
		httpError(w, http.StatusBadRequest, "request needs a worker_id")
		return false
	}
	if strings.HasPrefix(id, "!") {
		httpError(w, http.StatusBadRequest, "worker_id %q: ids starting with %q are reserved", id, "!")
		return false
	}
	return true
}

// handleLease pops queued jobs for a worker. An empty job list is a
// normal response (the long-poll elapsed idle; lease again); 503 means
// the server is shutting down and the worker should back off.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid lease request: %v", err)
		return
	}
	if !validWorkerID(w, req.WorkerID) {
		return
	}
	ttl := clampTTL(time.Duration(req.TTLMS) * time.Millisecond)
	wait := time.Duration(req.WaitMS) * time.Millisecond
	jobs, err := s.fleet.lease(req.WorkerID, req.MaxJobs, ttl, wait)
	if err != nil {
		httpTypedError(w, http.StatusServiceUnavailable, err)
		return
	}
	resp := LeaseResponse{TTLMS: ttl.Milliseconds(), Jobs: make([]WireJob, 0, len(jobs))}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, WireJob{Digest: j.Digest, Key: j.Key, Options: j.Opt})
	}
	writeJSON(w, resp)
}

// handleJobResult applies a worker's ack: a result or an error for one
// leased digest. Always 200 with an AckResponse — accepted=false marks an
// idempotent no-op (double ack, or a straggler whose lease was reclaimed
// and whose job someone else finished), which the worker treats as
// success.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	var up ResultUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		httpError(w, http.StatusBadRequest, "invalid result upload: %v", err)
		return
	}
	if !validWorkerID(w, up.WorkerID) {
		return
	}
	digest := r.PathValue("digest")
	var (
		res sim.Result
		err error
	)
	switch {
	case up.Error != "":
		err = fmt.Errorf("service: worker %s: %s", up.WorkerID, up.Error)
	case up.Result != nil:
		res = *up.Result
	default:
		httpError(w, http.StatusBadRequest, "result upload carries neither result nor error")
		return
	}
	accepted := s.fleet.complete(up.WorkerID, digest, res, err)
	if accepted && up.DurationMS > 0 {
		// A straggler's duration is as stale as its result: fold in only
		// accepted uploads so the histogram counts each job at most once.
		s.metrics.observeSimWall(time.Duration(up.DurationMS) * time.Millisecond)
	}
	s.log.Debug("remote result", "digest", digest, "worker", up.WorkerID,
		"accepted", accepted, "failed", up.Error != "")
	writeJSON(w, AckResponse{Accepted: accepted})
}

// handleJobRelease returns an unrun lease to the queue front.
func (s *Server) handleJobRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid release request: %v", err)
		return
	}
	if !validWorkerID(w, req.WorkerID) {
		return
	}
	s.fleet.touch(req.WorkerID)
	writeJSON(w, AckResponse{Accepted: s.queue.Release(r.PathValue("digest"), req.WorkerID)})
}

// handleHeartbeat extends a worker's leases; the response tells the
// worker how many it still holds (fewer than asked means some were
// reclaimed — their uploads will be ignored).
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid heartbeat: %v", err)
		return
	}
	if !validWorkerID(w, req.WorkerID) {
		return
	}
	s.fleet.touch(req.WorkerID)
	writeJSON(w, HeartbeatResponse{Held: s.queue.Heartbeat(req.WorkerID, req.Digests)})
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...)})
}

// httpTypedError answers with the error's wire code (and leader hint, if
// any), so the Client can rebuild the matching sentinel.
func httpTypedError(w http.ResponseWriter, status int, err error) {
	body := apiError{Error: err.Error(), Code: errorCode(err)}
	var nle *NotLeaderError
	if errors.As(err, &nle) {
		body.Leader = nle.Leader
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// decodeSpec decodes a sweep spec body. Typed errors (a fidelity block
// this build cannot honor, surfaced by FidelitySpec.UnmarshalJSON through
// the decoder) pass through so httpTypedError can attach their wire code;
// everything else gets the generic invalid-spec wrapper.
func decodeSpec(r *http.Request) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		if errors.Is(err, ErrUnsupportedFidelity) {
			return Spec{}, err
		}
		return Spec{}, fmt.Errorf("invalid sweep spec: %v", err)
	}
	return spec, nil
}

// submitStatus maps a submission error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrNotLeader):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func (s *Server) handleSubmitKeyed(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSpec(r)
	if err != nil {
		httpTypedError(w, http.StatusBadRequest, err)
		return
	}
	sw, attached, err := s.SubmitKeyed(r.PathValue("key"), spec)
	if err != nil {
		httpTypedError(w, submitStatus(err), err)
		return
	}
	status := http.StatusAccepted
	if attached {
		status = http.StatusOK
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(SubmitResponse{
		ID:         sw.id,
		Key:        sw.key,
		Total:      sw.total,
		Attached:   attached,
		StatusURL:  "/v1/sweeps/" + sw.id,
		ResultsURL: "/v1/sweeps/" + sw.id + "/results",
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSpec(r)
	if err != nil {
		httpTypedError(w, http.StatusBadRequest, err)
		return
	}
	sw, err := s.Submit(spec)
	if err != nil {
		httpTypedError(w, submitStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(SubmitResponse{
		ID:         sw.id,
		Key:        sw.key,
		Total:      sw.total,
		StatusURL:  "/v1/sweeps/" + sw.id,
		ResultsURL: "/v1/sweeps/" + sw.id + "/results",
	})
}

func (s *Server) lookupSweep(id string) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r.PathValue("id"))
	if !ok {
		httpTypedError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownSweep, r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sw.status())
}

// handleResults streams the sweep's outcomes as NDJSON in completion
// order, flushing per line batch, until the sweep is finished (or the
// client goes away). ?after=<seq> skips lines the client already
// consumed — the resume cursor. A finished, drained stream ends with an
// end sentinel line carrying the terminal state and final stats, so a
// client can distinguish "stream complete" from "connection lost".
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r.PathValue("id"))
	if !ok {
		httpTypedError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownSweep, r.PathValue("id")))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "invalid cursor %q", v)
			return
		}
		after = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Results append in strictly increasing seq order, so the cursor is
	// a binary search and "next" stays a plain index from there on.
	sw.mu.Lock()
	next := sort.Search(len(sw.results), func(i int) bool { return sw.results[i].Seq > after })
	sw.mu.Unlock()

	for {
		sw.mu.Lock()
		batch := sw.results[next:]
		state := sw.state
		errMsg := sw.errMsg
		stats := sw.stats
		lastSeq := sw.nextSeq - 1
		changed := sw.changed
		sw.mu.Unlock()

		for _, item := range batch {
			if err := enc.Encode(item); err != nil {
				return // client gone
			}
		}
		next += len(batch)
		if flusher != nil && len(batch) > 0 {
			flusher.Flush()
		}
		if state != stateRunning {
			sw.mu.Lock()
			drained := next == len(sw.results)
			resumable := sw.state == stateFailed && resumableFailure(sw.failErr)
			sw.mu.Unlock()
			if drained {
				if resumable {
					// Shutdown or leadership loss, not a verdict: close
					// without a sentinel so the client reads it as a lost
					// connection and resumes — against this server's next
					// boot, or through a follower proxying to the new
					// leader, either of which recovers the sweep from the
					// WAL and picks the stream up at the cursor.
					return
				}
				enc.Encode(streamEnd{Seq: lastSeq, End: true, State: string(state), Error: errMsg, Stats: stats})
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	res, ok := s.store.Lookup(digest)
	if !ok {
		httpError(w, http.StatusNotFound, "no result for digest %q", digest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Digest string     `json:"digest"`
		Result sim.Result `json:"result"`
	}{digest, res})
}

// HealthStatus is the GET /healthz document: a readiness probe, not just
// liveness. Status is "ok" while the result store is writable; a store
// whose last append failed (disk full, directory gone) degrades the
// answer to 503 so load balancers stop routing sweeps at a server that
// would accept and then lose them. QueueDepth rides along as the cheapest
// load signal. Role distinguishes a leader from a proxying follower in
// a replica group.
type HealthStatus struct {
	Status     string `json:"status"` // ok | degraded
	Store      string `json:"store"`  // ok | the sticky write error
	QueueDepth int    `json:"queue_depth"`
	Role       string `json:"role,omitempty"` // leader | follower (replicas only)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	hs := HealthStatus{Status: "ok", Store: "ok", QueueDepth: s.queue.stats().pending}
	if h, ok := s.store.(interface{ Health() error }); ok {
		if err := h.Health(); err != nil {
			hs.Status, hs.Store = "degraded", err.Error()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if hs.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(hs)
}

// handleMetrics serves valid Prometheus text exposition (version 0.0.4):
// scheduling counters (simulations run, jobs deduped, jobs served from
// cache), fleet state (attached workers, queue depth, leases handed out /
// reclaimed / completed remotely), durability state (WAL records, sweeps
// recovered, leader lease epoch), result-store size when the backend
// reports it, build identification, and the server's latency histograms.
// Single-sample families keep the bare `name value` line the smoke
// scripts grep for; HELP/TYPE headers and histogram families are what a
// real scraper consumes.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	qs := s.queue.stats()
	fs := s.fleet.stats()
	s.mu.Lock()
	sweepsTotal := s.sweepsTotal
	sweepsActive := s.countActiveLocked()
	sweepsRecovered := s.sweepsRecovered
	walReplayed := s.walReplayed
	quotaRejected := s.quotaRejected
	simsExecuted := s.simsExecuted
	jobsCached := s.jobsCached
	jobsDeduped := s.jobsDeduped
	simsRunning := s.simsRunning
	inflight := len(s.inflight)
	s.mu.Unlock()
	walRecords := walReplayed
	if s.wal != nil {
		walRecords += s.wal.Records()
	}

	var e obs.Exposition
	version, revision := obs.BuildFields()
	e.InfoGauge("secddr_build_info", "Build identification of the serving binary.",
		obs.Label{Name: "revision", Value: revision}, obs.Label{Name: "version", Value: version})
	e.Counter("secddr_sims_executed_total", "Simulations actually run (local pool or remote workers).", simsExecuted)
	e.Counter("secddr_jobs_cached_total", "Jobs answered straight from the result store.", jobsCached)
	e.Counter("secddr_jobs_deduped_total", "Jobs that joined an in-flight or in-batch digest.", jobsDeduped)
	e.Counter("secddr_sweeps_total", "Sweeps ever submitted or recovered.", sweepsTotal)
	e.Counter("secddr_sweeps_recovered_total", "Unfinished sweeps resumed from the WAL at boot.", sweepsRecovered)
	e.Counter("secddr_wal_records_total", "Sweep WAL records: replayed at boot plus appended since.", walRecords)
	e.Counter("secddr_quota_rejections_total", "Submissions rejected by the per-client quota.", quotaRejected)
	e.Gauge("secddr_leader", "1 while this process leads the shared queue (a standalone server always leads).", 1)
	e.Gauge("secddr_lease_epoch", "Leader-lease epoch fencing this server's WAL records (0 standalone).", float64(s.epoch))
	e.Gauge("secddr_sweeps_active", "Sweeps currently running.", float64(sweepsActive))
	e.Gauge("secddr_sims_running", "Local simulations executing right now.", float64(simsRunning))
	e.Gauge("secddr_digests_inflight", "Distinct digests with an open flight.", float64(inflight))
	e.Gauge("secddr_pool_capacity", "Size of the in-process execution pool (0 in fleet-only mode).", float64(s.localWorkers))
	e.Gauge("secddr_queue_depth", "Jobs queued and not yet leased.", float64(qs.pending))
	e.Gauge("secddr_jobs_leased", "Jobs currently leased to remote workers.", float64(qs.leased))
	e.Counter("secddr_jobs_requeued_total", "Leases reclaimed from silent workers.", qs.requeued)
	e.Counter("secddr_jobs_released_total", "Leases returned cooperatively by workers.", qs.released)
	e.Counter("secddr_jobs_leased_total", "Jobs ever handed to remote workers.", fs.leasedTotal)
	e.Counter("secddr_jobs_remote_done_total", "Jobs finished by a remote result upload.", fs.remoteComplete)
	e.Gauge("secddr_fleet_workers", "Remote workers seen within the attach window.", float64(fs.attached))
	if st, ok := s.store.(*resultstore.Store); ok {
		stats := st.Stats()
		e.Gauge("secddr_store_entries", "Distinct results in the store index.", float64(stats.Entries))
		e.Gauge("secddr_store_segments", "Store segments on disk.", float64(stats.Segments))
		e.Gauge("secddr_store_disk_bytes", "Total store bytes on disk.", float64(stats.DiskBytes))
		e.Gauge("secddr_store_garbage_bytes", "Store bytes owed to duplicate records.", float64(stats.GarbageBytes))
	}
	queueWait, leaseDur, simWall, storeFlush := s.metrics.snapshot()
	e.Histogram("secddr_queue_wait_us", "Microseconds jobs spent pending before being leased.", &queueWait)
	e.Histogram("secddr_lease_duration_us", "Microseconds from lease to completion.", &leaseDur)
	e.Histogram("secddr_job_sim_wall_us", "Wall-clock microseconds per simulation (local pool, plus worker-reported uploads).", &simWall)
	e.Histogram("secddr_store_flush_us", "Microseconds persisting one fresh result to the store.", &storeFlush)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, e.String())
}

func (s *Server) countActiveLocked() int {
	n := 0
	for _, sw := range s.sweeps {
		if sw.status().State == string(stateRunning) {
			n++
		}
	}
	return n
}
