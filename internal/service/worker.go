package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"time"

	"secddr/internal/harness"
	"secddr/internal/sim"
)

// Worker is the client half of the leasing protocol: the engine of
// cmd/secddr-worker. It leases batches of jobs from a secddr-serve
// daemon, runs them through the campaign harness's bounded pool, streams
// each result back as it finishes, heartbeats while the batch runs, and
// releases anything it will not run. Any number of workers may point at
// one server; the server's queue hands each job to exactly one of them at
// a time and reclaims leases from workers that die.
type Worker struct {
	Client *Client
	// ID names this worker in leases and logs; empty means "host-pid".
	ID string
	// Workers bounds parallel simulations within this process; <= 0 means
	// GOMAXPROCS.
	Workers int
	// LeaseTTL is the lease duration to request; heartbeats run at a
	// third of it. 0 means the server default (the server clamps either
	// way).
	LeaseTTL time.Duration
	// PollWait is the lease long-poll duration; 0 means 5s.
	PollWait time.Duration
	// Sim substitutes the simulation entry point (tests); nil means
	// sim.Run via the harness.
	Sim func(sim.Options) (sim.Result, error)
	// Logf, when non-nil, receives progress lines (the legacy printf hook).
	Logf func(format string, args ...any)
	// Log, when non-nil, receives structured progress events — lease
	// batches, uploads, releases — with worker and job-digest attributes,
	// so one digest's path greps out of a fleet's interleaved logs and
	// correlates with the server's events for the same digest.
	Log *slog.Logger
}

var discardLog = slog.New(slog.NewTextHandler(io.Discard, nil))

func (w *Worker) slog() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return discardLog
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) workers() int {
	if w.Workers > 0 {
		return w.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (w *Worker) pollWait() time.Duration {
	if w.PollWait > 0 {
		return w.PollWait
	}
	return 5 * time.Second
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run leases and executes jobs until ctx is cancelled. On cancellation
// in-flight simulations finish and their results are still uploaded (the
// paid-for work reaches the store); unstarted leases are released so the
// server re-queues them immediately instead of waiting out the TTL.
// Server errors (including restarts) are retried with backoff, so a fleet
// survives its server better than its server needs to know.
func (w *Worker) Run(ctx context.Context) error {
	id := w.id()
	backoff := time.Second
	for {
		if ctx.Err() != nil {
			return nil
		}
		resp, err := w.Client.Lease(ctx, LeaseRequest{
			WorkerID: id,
			// Lease one spare job per pool slot so the next point starts
			// without a round trip to the server.
			MaxJobs: 2 * w.workers(),
			WaitMS:  w.pollWait().Milliseconds(),
			TTLMS:   w.LeaseTTL.Milliseconds(),
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			// Leadership churn (replica failover, graceful restart) resolves
			// in seconds; don't let the backoff climb toward 30s over it.
			if (errors.Is(err, ErrNotLeader) || errors.Is(err, ErrShuttingDown)) && backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			w.logf("lease failed (retrying in %v): %v", backoff, err)
			w.slog().Warn("lease failed", "worker", id, "retry_in", backoff, "err", err)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil
			}
			if backoff < 30*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = time.Second
		if len(resp.Jobs) == 0 {
			continue
		}
		w.runBatch(ctx, id, resp.Jobs, time.Duration(resp.TTLMS)*time.Millisecond)
	}
}

// runBatch executes one lease batch through the harness, uploading every
// point's fate: Record posts successes, OnError posts the failing digest,
// and leftovers (unrun jobs after an abort or cancellation) are released.
func (w *Worker) runBatch(ctx context.Context, id string, jobs []WireJob, ttl time.Duration) {
	w.logf("leased %d job(s)", len(jobs))
	w.slog().Info("leased jobs", "worker", id, "count", len(jobs), "ttl", ttl)
	settled := make(map[string]bool, len(jobs)) // digest -> acked or released
	var mu sync.Mutex
	settle := func(d string) {
		mu.Lock()
		settled[d] = true
		mu.Unlock()
	}
	held := func() []string {
		mu.Lock()
		defer mu.Unlock()
		var out []string
		for _, j := range jobs {
			if !settled[j.Digest] {
				out = append(out, j.Digest)
			}
		}
		return out
	}

	// Heartbeat until the batch settles, on a context independent of ctx:
	// a cancelled worker still holds its leases while in-flight points
	// drain, and losing them to the reaper mid-drain would waste the work.
	hbCtx, stopHB := context.WithCancel(context.Background())
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		every := ttl / 3
		if every < 100*time.Millisecond {
			every = 100 * time.Millisecond
		}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				digests := held()
				if len(digests) == 0 {
					return
				}
				if _, err := w.Client.Heartbeat(hbCtx, id, digests); err != nil {
					w.logf("heartbeat failed: %v", err)
				}
			}
		}
	}()

	// Uploads run on background contexts for the same reason: once a
	// simulation finished, its result should reach the server even while
	// the worker is shutting down.
	post := func(digest string, up ResultUpload) {
		upCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		accepted, err := w.Client.PostResult(upCtx, digest, up)
		if err != nil {
			w.logf("uploading %s failed: %v", digest, err)
			w.slog().Warn("upload failed", "worker", id, "digest", digest, "err", err)
			return
		}
		settle(digest)
		w.slog().Debug("uploaded result", "worker", id, "digest", digest,
			"accepted", accepted, "failed", up.Error != "")
		if !accepted {
			w.logf("upload of %s ignored (lease reclaimed)", digest)
		}
	}

	hjobs := make([]harness.Job, len(jobs))
	for i, j := range jobs {
		hjobs[i] = harness.Job{Key: j.Key, Opt: j.Options}
	}
	_, _, err := harness.RunContext(ctx, harness.Campaign{
		Jobs:    hjobs,
		Workers: w.workers(),
		Store:   &uploadStore{post: post, id: id},
		Sim:     w.Sim,
		OnError: func(digest string, err error) {
			post(digest, ResultUpload{WorkerID: id, Error: err.Error()})
		},
	})
	if err != nil {
		w.logf("batch aborted: %v", err)
		w.slog().Warn("batch aborted", "worker", id, "err", err)
	}

	// Give back whatever never ran so the server re-queues it now.
	for _, digest := range held() {
		relCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := w.Client.Release(relCtx, digest, id); err != nil {
			w.logf("releasing %s failed: %v", digest, err)
			w.slog().Warn("release failed", "worker", id, "digest", digest, "err", err)
		}
		cancel()
		settle(digest)
	}
	stopHB()
	hbDone.Wait()
}

// uploadStore satisfies harness.Store for a lease batch: Lookup always
// misses (the server already filtered stored digests at lease time) and
// Record streams the fresh result back to the server.
type uploadStore struct {
	post func(digest string, up ResultUpload)
	id   string
}

func (s *uploadStore) Lookup(string) (sim.Result, bool) { return sim.Result{}, false }

func (s *uploadStore) Record(digest string, res sim.Result) error {
	s.post(digest, ResultUpload{WorkerID: s.id, Result: &res})
	return nil
}
